package metrics

import (
	"testing"
	"time"
)

// setFilter is a deterministic test double: membership by exact set.
type setFilter struct {
	keys map[string]bool
	fp   map[string]bool // keys it wrongly accepts
}

func (s *setFilter) Contains(key []byte) bool {
	return s.keys[string(key)] || s.fp[string(key)]
}
func (s *setFilter) Name() string     { return "set" }
func (s *setFilter) SizeBits() uint64 { return 0 }

func TestWeightedFPR(t *testing.T) {
	f := &setFilter{
		keys: map[string]bool{"a": true},
		fp:   map[string]bool{"x": true},
	}
	neg := [][]byte{[]byte("x"), []byte("y"), []byte("z")}
	costs := []float64{10, 1, 1}
	got, err := WeightedFPR(f, neg, costs)
	if err != nil {
		t.Fatal(err)
	}
	if got != 10.0/12.0 {
		t.Errorf("WeightedFPR = %v, want %v", got, 10.0/12.0)
	}
	// Uniform costs equal plain FPR.
	uniform := []float64{1, 1, 1}
	w, _ := WeightedFPR(f, neg, uniform)
	p, _ := FPR(f, neg)
	if w != p {
		t.Errorf("uniform weighted %v != plain %v", w, p)
	}
}

func TestWeightedFPRErrors(t *testing.T) {
	f := &setFilter{}
	if _, err := WeightedFPR(f, nil, nil); err == nil {
		t.Error("empty negatives accepted")
	}
	if _, err := WeightedFPR(f, [][]byte{[]byte("a")}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := WeightedFPR(f, [][]byte{[]byte("a")}, []float64{0}); err == nil {
		t.Error("zero cost mass accepted")
	}
}

func TestFNR(t *testing.T) {
	f := &setFilter{keys: map[string]bool{"a": true}}
	got, err := FNR(f, [][]byte{[]byte("a"), []byte("b")})
	if err != nil {
		t.Fatal(err)
	}
	if got != 0.5 {
		t.Errorf("FNR = %v, want 0.5", got)
	}
	if _, err := FNR(f, nil); err == nil {
		t.Error("empty positives accepted")
	}
}

func TestFPRBasic(t *testing.T) {
	f := &setFilter{fp: map[string]bool{"x": true}}
	got, err := FPR(f, [][]byte{[]byte("x"), []byte("y")})
	if err != nil {
		t.Fatal(err)
	}
	if got != 0.5 {
		t.Errorf("FPR = %v, want 0.5", got)
	}
	if _, err := FPR(f, nil); err == nil {
		t.Error("empty negatives accepted")
	}
}

func TestTimePerKey(t *testing.T) {
	d := TimePerKey(100, func() { time.Sleep(time.Millisecond) })
	if d < 5*time.Microsecond || d > 5*time.Millisecond {
		t.Errorf("TimePerKey = %v, want ≈10µs", d)
	}
	if TimePerKey(0, func() {}) != 0 {
		t.Error("n=0 should give 0")
	}
}

func TestQueryLatency(t *testing.T) {
	f := &setFilter{keys: map[string]bool{"a": true}}
	probes := make([][]byte, 1000)
	for i := range probes {
		probes[i] = []byte("a")
	}
	if d := QueryLatency(f, probes); d < 0 {
		t.Errorf("latency %v", d)
	}
	if QueryLatency(f, nil) != 0 {
		t.Error("no probes should give 0")
	}
}

func TestConstructionFootprint(t *testing.T) {
	out, bytes := ConstructionFootprint(func() []byte {
		return make([]byte, 1<<20)
	})
	if len(out) != 1<<20 {
		t.Fatal("build result lost")
	}
	if bytes < 1<<20 {
		t.Errorf("footprint %d below the 1 MiB actually allocated", bytes)
	}
}
