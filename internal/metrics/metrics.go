// Package metrics implements the four measurements of §V-B: weighted FPR
// (Eq. 20), construction time, query latency and construction memory
// consumption, in a form every filter in the repository can plug into.
package metrics

import (
	"fmt"
	"runtime"
	"time"
)

// Filter is the query-side capability every filter under test exposes.
type Filter interface {
	Contains(key []byte) bool
	Name() string
	SizeBits() uint64
}

// WeightedFPR measures Eq. 20 over the known negative set: the cost-mass
// of false positives divided by the total cost mass. With uniform costs it
// equals the plain FPR.
//
// Sampling contract: the result is computed over exactly the negatives
// given — no extrapolation, no resampling, no reweighting beyond the
// supplied costs. Callers that pass a sample of their negative traffic
// (habfbench's accuracy line passes the known adversarial negatives,
// the distribution cost-aware filters optimize against) get an estimate
// conditional on that sample's distribution, which can differ from the
// uniform-universe FPR; callers that pass every non-member key get the
// exact rate. TestSamplingContract pins both readings against an
// exhaustive small-universe computation. costs[i] must belong to
// negatives[i]; a length mismatch is an error, never a truncation.
func WeightedFPR(f Filter, negatives [][]byte, costs []float64) (float64, error) {
	if len(negatives) == 0 {
		return 0, fmt.Errorf("metrics: empty negative set")
	}
	if len(costs) != len(negatives) {
		return 0, fmt.Errorf("metrics: %d costs for %d negatives", len(costs), len(negatives))
	}
	var fpCost, total float64
	for i, key := range negatives {
		total += costs[i]
		if f.Contains(key) {
			fpCost += costs[i]
		}
	}
	if total == 0 {
		return 0, fmt.Errorf("metrics: zero total cost")
	}
	return fpCost / total, nil
}

// FPR measures the plain false-positive rate over known negatives. The
// WeightedFPR sampling contract applies: the rate is exact for the keys
// given and an estimate of nothing beyond them.
func FPR(f Filter, negatives [][]byte) (float64, error) {
	if len(negatives) == 0 {
		return 0, fmt.Errorf("metrics: empty negative set")
	}
	fp := 0
	for _, key := range negatives {
		if f.Contains(key) {
			fp++
		}
	}
	return float64(fp) / float64(len(negatives)), nil
}

// FNR measures the false-negative rate over known positives; every filter
// in this repository must report 0.
func FNR(f Filter, positives [][]byte) (float64, error) {
	if len(positives) == 0 {
		return 0, fmt.Errorf("metrics: empty positive set")
	}
	fn := 0
	for _, key := range positives {
		if !f.Contains(key) {
			fn++
		}
	}
	return float64(fn) / float64(len(positives)), nil
}

// TimePerKey runs fn once over n keys and returns the mean wall time per
// key — the construction-time and query-latency metric of Fig. 12.
func TimePerKey(n int, fn func()) time.Duration {
	if n <= 0 {
		return 0
	}
	start := time.Now()
	fn()
	return time.Since(start) / time.Duration(n)
}

// QueryLatency measures mean Contains latency over the given probe keys.
func QueryLatency(f Filter, probes [][]byte) time.Duration {
	if len(probes) == 0 {
		return 0
	}
	var sink bool
	start := time.Now()
	for _, key := range probes {
		sink = f.Contains(key)
	}
	_ = sink
	return time.Since(start) / time.Duration(len(probes))
}

// ConstructionFootprint runs build and returns its result together with
// the peak-ish heap growth it caused, in bytes — the Fig. 15 metric. The
// measurement forces a GC before and after, so it reports live allocations
// retained by the build plus transient structures still reachable at
// return; it is an approximation adequate for the paper's ratio-level
// comparisons.
func ConstructionFootprint[T any](build func() T) (T, uint64) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	out := build()
	runtime.ReadMemStats(&after)
	var grew uint64
	if after.HeapAlloc > before.HeapAlloc {
		grew = after.HeapAlloc - before.HeapAlloc
	}
	// TotalAlloc delta captures transient construction garbage, which is
	// what dominates the paper's construction-memory figure.
	churn := after.TotalAlloc - before.TotalAlloc
	if churn > grew {
		grew = churn
	}
	return out, grew
}
