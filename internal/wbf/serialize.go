package wbf

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/bitset"
)

// Serialization lets a Weighted Bloom filter built once be shipped to
// query nodes or framed into a serving snapshot (internal/snapshot).
// WBF is the one baseline whose query-time state is more than an array:
// the per-key hash-count assignment (the cost cache) must travel with
// the bits, or a restored filter would probe cached negatives with the
// wrong k and change their false-positive behavior. The format is
// self-describing and versioned:
//
//	magic u32 "WBFF" | version u8 | baseK u8 | minK u8 | maxK u8 |
//	avgCost f64 | cacheCount u64 | bitsLen u64 |
//	bits (bitset.Bits wire format) |
//	cache entries: cacheCount × (keyLen u32 | k u8 | key bytes)
//
// The bit array precedes the variable-length cache so its payload
// offset is a constant (WireAlignOffset) and zero-copy container loads
// can align it. Cache entries are written in ascending key order, so
// marshal → unmarshal → re-marshal is byte-identical — the invariant
// the cross-backend property suite pins for every wire format.

// Version 2: probe positions derive from the shared base hash
// (hashes.Base) instead of per-family key hashing. Version-1 containers
// hold bits under the old derivation and must not be served by this
// code, so decoding rejects them.
const filterVersion = 2

// wireMagic is the on-wire magic: "WBFF" as a little-endian u32.
const wireMagic = uint32(0x46464257)

// headerSize is the fixed prefix before the length-prefixed bits block.
const headerSize = 32

// maxK bounds the per-key hash count a decoded filter may carry; it
// matches the bloom package's k ceiling and keeps a hostile cache entry
// from turning every query into a 255-probe loop.
const maxWireK = 64

// WireAlignOffset is the offset within a MarshalBinary payload of the
// first word of the bit array: header, block length, Bits header.
// Containers that want zero-copy loads pad their frames so this offset
// lands 8-byte aligned in the mapped buffer.
const WireAlignOffset = headerSize + 12

// Add inserts a key post-construction so it is queryable immediately
// with zero false negatives. The insert must cover every position a
// later Contains will probe: for most keys that is the base hash count,
// but a key in the cost cache is probed with its cached (possibly
// elevated) count, so Add inserts with whichever is larger — positions
// are a prefix of one double-hash sequence, so the larger count covers
// both. Add must be externally synchronized against readers (the shard
// layer provides that); on a borrow-mode filter the first Add copies
// the bit array before mutating it, never writing the snapshot buffer.
func (f *Filter) Add(key []byte) {
	f.add(key, f.insertK(key))
}

// insertK returns the hash count an insert of key must set so that any
// later Contains — which probes the cached count when key is a cached
// costly negative, the base count otherwise — finds every bit set.
func (f *Filter) insertK(key []byte) int {
	k := f.baseK
	if ck, ok := f.kCache[string(key)]; ok && int(ck) > k {
		k = int(ck)
	}
	return k
}

// MarshalBinary encodes the filter's query-time state.
func (f *Filter) MarshalBinary() ([]byte, error) {
	bits, err := f.bits.MarshalBinary()
	if err != nil {
		return nil, err
	}
	cacheKeys := make([]string, 0, len(f.kCache))
	for k := range f.kCache {
		cacheKeys = append(cacheKeys, k)
	}
	sort.Strings(cacheKeys)

	cacheBytes := 0
	for _, k := range cacheKeys {
		cacheBytes += 4 + 1 + len(k)
	}
	out := make([]byte, headerSize, headerSize+len(bits)+cacheBytes)
	binary.LittleEndian.PutUint32(out[0:4], wireMagic)
	out[4] = filterVersion
	out[5] = uint8(f.baseK)
	out[6] = uint8(f.minK)
	out[7] = uint8(f.maxK)
	binary.LittleEndian.PutUint64(out[8:16], math.Float64bits(f.avgCost))
	binary.LittleEndian.PutUint64(out[16:24], uint64(len(cacheKeys)))
	binary.LittleEndian.PutUint64(out[24:32], uint64(len(bits)))
	out = append(out, bits...)
	var entry [5]byte
	for _, k := range cacheKeys {
		binary.LittleEndian.PutUint32(entry[0:4], uint32(len(k)))
		entry[4] = f.kCache[k]
		out = append(out, entry[:]...)
		out = append(out, k...)
	}
	return out, nil
}

// UnmarshalFilter decodes a filter produced by MarshalBinary into owned
// memory; data is not retained.
func UnmarshalFilter(data []byte) (*Filter, error) {
	return unmarshalFilter(data, false)
}

// UnmarshalFilterBorrow decodes a filter produced by MarshalBinary
// without copying the bit array when it is 8-byte aligned inside data:
// the filter then serves queries directly from data, which the caller
// must keep alive and unmodified. A post-load Add copies the array
// before mutating it (copy-on-first-write), never writing data. The
// cost cache is always copied (it is rebuilt as a map either way).
func UnmarshalFilterBorrow(data []byte) (*Filter, error) {
	return unmarshalFilter(data, true)
}

func unmarshalFilter(data []byte, borrow bool) (*Filter, error) {
	if len(data) < headerSize {
		return nil, errors.New("wbf: truncated filter header")
	}
	if binary.LittleEndian.Uint32(data[0:4]) != wireMagic {
		return nil, errors.New("wbf: bad filter magic")
	}
	if data[4] != filterVersion {
		return nil, fmt.Errorf("wbf: unsupported filter version %d", data[4])
	}
	baseK, minK, maxK := int(data[5]), int(data[6]), int(data[7])
	if baseK < 1 || baseK > maxWireK || minK < 1 || maxK > maxWireK || minK > baseK || baseK > maxK {
		return nil, fmt.Errorf("wbf: hash counts base=%d min=%d max=%d out of range", baseK, minK, maxK)
	}
	avgCost := math.Float64frombits(binary.LittleEndian.Uint64(data[8:16]))
	if math.IsNaN(avgCost) || math.IsInf(avgCost, 0) || avgCost < 0 {
		return nil, fmt.Errorf("wbf: average cost %v out of range", avgCost)
	}
	cacheCount64 := binary.LittleEndian.Uint64(data[16:24])
	bitsLen64 := binary.LittleEndian.Uint64(data[24:32])
	rest := uint64(len(data) - headerSize)
	if bitsLen64 > rest {
		return nil, errors.New("wbf: bits block length out of bounds")
	}
	// Every cache entry costs at least its 5-byte header, so the byte
	// length bounds the plausible entry count — reject before allocating
	// the map a hostile count would size.
	if cacheCount64 > (rest-bitsLen64)/5 {
		return nil, fmt.Errorf("wbf: implausible cache entry count %d for %d bytes", cacheCount64, rest-bitsLen64)
	}

	unmarshalBits := (*bitset.Bits).UnmarshalBinary
	if borrow {
		unmarshalBits = (*bitset.Bits).UnmarshalBinaryBorrow
	}
	var bits bitset.Bits
	bitsEnd := headerSize + int(bitsLen64)
	if err := unmarshalBits(&bits, data[headerSize:bitsEnd]); err != nil {
		return nil, fmt.Errorf("wbf: %w", err)
	}
	if bits.Len() == 0 {
		return nil, errors.New("wbf: zero-length filter")
	}

	cache := make(map[string]uint8, cacheCount64)
	pos := bitsEnd
	var prevKey string
	for i := uint64(0); i < cacheCount64; i++ {
		if len(data)-pos < 5 {
			return nil, fmt.Errorf("wbf: truncated cache entry %d", i)
		}
		keyLen := int(binary.LittleEndian.Uint32(data[pos : pos+4]))
		k := int(data[pos+4])
		pos += 5
		if keyLen > len(data)-pos {
			return nil, fmt.Errorf("wbf: cache entry %d key length %d out of bounds", i, keyLen)
		}
		if k < minK || k > maxK {
			return nil, fmt.Errorf("wbf: cache entry %d hash count %d outside [%d,%d]", i, k, minK, maxK)
		}
		key := string(data[pos : pos+keyLen])
		// Ascending unique order is what MarshalBinary writes; enforcing
		// it keeps re-marshal byte-identical and rejects duplicate keys.
		if i > 0 && key <= prevKey {
			return nil, fmt.Errorf("wbf: cache entry %d out of order", i)
		}
		prevKey = key
		cache[key] = uint8(k)
		pos += keyLen
	}
	if pos != len(data) {
		return nil, errors.New("wbf: trailing bytes after cache entries")
	}
	return &Filter{
		bits:    &bits,
		baseK:   baseK,
		minK:    minK,
		maxK:    maxK,
		kCache:  cache,
		avgCost: avgCost,
	}, nil
}

// Borrowed reports whether the filter still serves from the buffer it
// was decoded from (UnmarshalFilterBorrow before any mutation).
func (f *Filter) Borrowed() bool { return f.bits.Borrowed() }
