package hashes

// This file holds the classic one-line string hashes of Table II, widened
// to 64-bit accumulators. They are intentionally weak compared to the
// functions in strong.go: the paper keeps them in H to demonstrate that
// hash customization protects against skewed hash functions, and the
// conflict-driven TPJO algorithm will simply route keys away from them
// when they cluster.

// DEK is Knuth's rotate-xor hash from The Art of Computer Programming.
func DEK(data []byte) uint64 {
	h := uint64(len(data))
	for _, b := range data {
		h = h<<5 ^ h>>59 ^ uint64(b)
	}
	return h
}

// PYHash is the classic CPython 2 string hash: multiply by 1000003, xor
// the byte, and finally xor the length.
func PYHash(data []byte) uint64 {
	if len(data) == 0 {
		return 0
	}
	h := uint64(data[0]) << 7
	for _, b := range data {
		h = h*1000003 ^ uint64(b)
	}
	return h ^ uint64(len(data))
}

// BRP is the "BP"-style shift-xor hash from the classic string-hash corpus.
func BRP(data []byte) uint64 {
	var h uint64
	for _, b := range data {
		h = h<<7 ^ uint64(b)
	}
	return h
}

// AP is Arash Partow's alternating shift hash.
func AP(data []byte) uint64 {
	h := uint64(0xaaaaaaaaaaaaaaaa)
	for i, b := range data {
		if i&1 == 0 {
			h ^= h<<7 ^ uint64(b)*(h>>3)
		} else {
			h ^= ^(h<<11 + uint64(b) ^ (h >> 5))
		}
	}
	return h
}

// NDJB is the xor variant of Bernstein's hash: h = h*33 ^ c.
func NDJB(data []byte) uint64 {
	h := uint64(5381)
	for _, b := range data {
		h = h*33 ^ uint64(b)
	}
	return h
}

// DJB is Bernstein's original additive hash: h = h*33 + c.
func DJB(data []byte) uint64 {
	h := uint64(5381)
	for _, b := range data {
		h = h*33 + uint64(b)
	}
	return h
}

// BKDR is the Brian Kernighan / Dennis Ritchie multiplier hash (seed 131).
func BKDR(data []byte) uint64 {
	var h uint64
	for _, b := range data {
		h = h*131 + uint64(b)
	}
	return h
}

// PJW is the classic Peter J. Weinberger hash, widened to 64 bits
// (shift constants scaled ×2 from the 32-bit original).
func PJW(data []byte) uint64 {
	const (
		bitsInUnit   = 64
		threeQuarter = bitsInUnit * 3 / 4
		oneEighth    = bitsInUnit / 8
		highBits     = uint64(0xFF) << (bitsInUnit - oneEighth)
	)
	var h uint64
	for _, b := range data {
		h = h<<oneEighth + uint64(b)
		if g := h & highBits; g != 0 {
			h = (h ^ g>>threeQuarter) &^ highBits
		}
	}
	return h
}

// JS is Justin Sobel's bitwise hash.
func JS(data []byte) uint64 {
	h := uint64(1315423911)
	for _, b := range data {
		h ^= h<<5 + uint64(b) + h>>2
	}
	return h
}

// RS is Robert Sedgewick's hash from Algorithms in C.
func RS(data []byte) uint64 {
	var (
		h uint64
		a uint64 = 63689
	)
	const bMul uint64 = 378551
	for _, c := range data {
		h = h*a + uint64(c)
		a *= bMul
	}
	return h
}

// SDBM is the hash used by the sdbm database library.
func SDBM(data []byte) uint64 {
	var h uint64
	for _, b := range data {
		h = uint64(b) + h<<6 + h<<16 - h
	}
	return h
}

// ELF is the hash from the UNIX ELF object format (a PJW derivative with
// the traditional 32-bit constants, widened).
func ELF(data []byte) uint64 {
	var h, g uint64
	for _, b := range data {
		h = h<<4 + uint64(b)
		if g = h & 0xF000000000000000; g != 0 {
			h ^= g >> 56
		}
		h &^= g
	}
	return h
}
