package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	habf "repro"
	"repro/internal/dataset"
)

// backendsUnderTest mirrors the conformance suite's selection: every
// registered backend, or just the one named by FILTERCORE_BACKEND (set
// by the CI matrix).
func backendsUnderTest(t *testing.T) []string {
	if only := os.Getenv("FILTERCORE_BACKEND"); only != "" {
		return []string{only}
	}
	return habf.Backends()
}

// newBackendFilter builds a small sharded filter on the named backend.
func newBackendFilter(t testing.TB, backend string, keys int) (*habf.Sharded, dataset.Pair) {
	t.Helper()
	data := dataset.YCSB(keys, keys, 7)
	negatives := make([]habf.WeightedKey, keys)
	for i := range negatives {
		negatives[i] = habf.WeightedKey{Key: data.Negatives[i], Cost: 1}
	}
	f, err := habf.NewSharded(data.Positives, negatives, uint64(10*keys),
		habf.WithShards(4), habf.WithBackend(backend))
	if err != nil {
		t.Fatal(err)
	}
	return f, data
}

// TestServerBackendEndToEnd drives the full serving cycle over every
// registered backend through the HTTP API: query → add → snapshot →
// restore → query, with zero false negatives at every step, and the
// backend surfaced in /v1/stats and /metrics.
func TestServerBackendEndToEnd(t *testing.T) {
	for _, backend := range backendsUnderTest(t) {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			filter, data := newBackendFilter(t, backend, 1500)
			_, hs := newTestServer(t, filter, Config{})

			// Members answer true over both body forms; negatives agree
			// with the direct filter.
			for i := 0; i < 300; i++ {
				if !containsJSON(t, hs.URL, data.Positives[i]) {
					t.Fatalf("false negative over HTTP: member %d", i)
				}
				if got, want := containsRaw(t, hs.URL, data.Negatives[i]), filter.Contains(data.Negatives[i]); got != want {
					t.Fatalf("negative %d: HTTP=%v direct=%v", i, got, want)
				}
			}

			// Adds are queryable on ack — including on the static xor
			// backend, where they ride the pending buffer.
			var added [][]byte
			for i := 0; i < 120; i++ {
				key := []byte(fmt.Sprintf("e2e-%s-%06d", backend, i))
				added = append(added, key)
				resp, err := http.Post(hs.URL+"/v1/add", "application/octet-stream", strings.NewReader(string(key)))
				if err != nil {
					t.Fatal(err)
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusNoContent {
					t.Fatalf("add: HTTP %d", resp.StatusCode)
				}
				if !containsRaw(t, hs.URL, key) {
					t.Fatalf("acked add %q not queryable", key)
				}
			}

			// /v1/stats names the backend.
			resp, err := http.Get(hs.URL + "/v1/stats")
			if err != nil {
				t.Fatal(err)
			}
			var st statsResponse
			err = json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if st.Backend != backend {
				t.Fatalf("stats backend %q, want %q", st.Backend, backend)
			}

			// /metrics carries the backend info gauge.
			resp, err = http.Get(hs.URL + "/metrics")
			if err != nil {
				t.Fatal(err)
			}
			metrics, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			want := fmt.Sprintf(`habfserved_backend_info{backend=%q`, backend)
			if !strings.Contains(string(metrics), want) {
				t.Fatalf("metrics missing %s:\n%s", want, metrics)
			}

			// Snapshot through the API, restore with the public loader:
			// the backend round-trips and no acked key is lost.
			path := filepath.Join(t.TempDir(), "backend.snap")
			resp, body := postJSON(t, hs.URL+"/v1/snapshot", map[string]any{"path": path})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("snapshot: HTTP %d: %s", resp.StatusCode, body)
			}
			restored, err := habf.LoadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if restored.Backend() != backend {
				t.Fatalf("restored backend %q, want %q", restored.Backend(), backend)
			}
			for i, key := range data.Positives {
				if !restored.Contains(key) {
					t.Fatalf("false negative after restore: member %d", i)
				}
			}
			for _, key := range added {
				if !restored.Contains(key) {
					t.Fatalf("restore lost acked key %q", key)
				}
			}
		})
	}
}
