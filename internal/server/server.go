// Package server turns a sharded HABF into a network service: an HTTP
// API over *habf.Sharded with transparent request coalescing, so the
// per-chunk lock amortization of ContainsBatch — an in-process win for
// callers that already hold a batch — is also realized for independent
// single-key network callers.
//
// Endpoints (all request/response bodies are JSON unless noted):
//
//	POST /v1/contains        {"key": <base64>}            → {"present": bool}
//	POST /v1/contains_batch  {"keys": [<base64>, ...]}    → {"present": [bool, ...]}
//	POST /v1/add             {"key": <base64>}            → {"ok": true}
//	POST /v1/snapshot        {"path": "..."} (optional)   → {"path": ..., "ms": ...}
//	GET  /v1/snapshot                                     → the snapshot container itself (octet-stream)
//	GET  /v1/epoch                                        → the filter mutation epoch, as decimal text
//	GET  /v1/stats                                        → filter + shard + coalescer stats
//	GET  /metrics                                         → Prometheus text format
//
// /v1/contains and /v1/add also accept Content-Type:
// application/octet-stream with the raw key bytes as the body; raw
// contains requests are answered with a one-byte body, "1" or "0". The
// raw form exists for load generators and latency-sensitive callers that
// want to skip JSON entirely.
//
// Beside HTTP, BinaryServer serves the internal/wire binary protocol on
// a raw TCP listener through the same coalescer and filter — the path
// for single-key callers that can't afford HTTP request framing at all.
//
// The server is the unit of replication. GET /v1/snapshot streams the
// same container SaveFile writes (stamped with the filter's mutation
// epoch in an X-Habf-Epoch header), GET /v1/epoch is the cheap
// freshness probe a follower polls, and SwapFilter atomically replaces
// the served filter — how a follower that restored a fresher snapshot
// cuts queries over without dropping a request. A server built with
// Config.ReadOnly (a follower) rejects writes with a 307 redirect to
// its primary, keeping the write path single-master.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	habf "repro"
	"repro/internal/metrics"
	"repro/internal/wire"
)

// maxBodyBytes bounds request bodies; a membership key or a batch of
// them is small, so anything larger is a client error, not traffic. It
// matches the binary protocol's per-key ceiling so both request paths
// reject at the same size.
const maxBodyBytes = wire.MaxKeyLen

// errBodyTooLarge rejects oversized request bodies. It must be a
// rejection, never a truncation: a key cut at the body limit would be
// silently queried — or worse, Add-acked — as a different key.
var errBodyTooLarge = errors.New("request body exceeds " + strconv.Itoa(maxBodyBytes) + " bytes")

// Config assembles a Server.
type Config struct {
	// Filter is the sharded filter to serve. Required.
	Filter *habf.Sharded
	// Coalesce tunes (or disables) single-key request coalescing.
	Coalesce CoalesceConfig
	// SnapshotPath is the default target for POST /v1/snapshot and for
	// snapshot-on-exit. Empty means snapshot requests must name a path.
	SnapshotPath string
	// ReadOnly makes the server a replication follower: /v1/add and
	// binary OpAdd are rejected, redirecting writers to Primary. Reads,
	// stats, metrics and snapshot downloads serve normally.
	ReadOnly bool
	// Primary is the primary's base URL (e.g. "http://10.0.0.1:8080"),
	// the redirect target for writes on a ReadOnly server.
	Primary string
}

// Server is the HTTP serving layer. Create with New, expose with
// Handler, and Close when done (it drains the coalescer).
type Server struct {
	// filter is behind an atomic pointer so a replication follower can
	// swap in a freshly restored snapshot while requests are in flight;
	// every handler loads it once per request via Filter().
	filter   atomic.Pointer[habf.Sharded]
	co       *Coalescer
	mux      *http.ServeMux
	snapPath string
	readOnly bool
	primary  string

	// snapMu serializes snapshot writes to the default path so two
	// concurrent /v1/snapshot calls don't interleave their progress
	// reporting (SaveFile itself is already crash-safe under races).
	snapMu sync.Mutex

	reg *metrics.Registry

	mContains      *metrics.Counter
	mContainsBatch *metrics.Counter
	mBatchKeys     *metrics.Counter
	mAdd           *metrics.Counter
	mSnapshots     *metrics.Counter
	mErrors        *metrics.Counter
	hContains      *metrics.Histogram
	hBatchSize     *metrics.Histogram
	hCoalesceSize  *metrics.Histogram

	// Binary-protocol instrumentation (see BinaryServer). Registered
	// unconditionally so scrapes see the series at zero when no binary
	// listener is configured.
	mBinContains *metrics.Counter
	mBinBatch    *metrics.Counter
	mBinAdd      *metrics.Counter
	mBinPing     *metrics.Counter
	mBinEpoch    *metrics.Counter
	hBinContains *metrics.Histogram
	hBinBatch    *metrics.Histogram
	binConns     atomic.Int64
}

// New builds a Server over cfg.Filter and starts its coalescer.
func New(cfg Config) (*Server, error) {
	if cfg.Filter == nil {
		return nil, fmt.Errorf("server: nil Filter")
	}
	s := &Server{
		snapPath: cfg.SnapshotPath,
		readOnly: cfg.ReadOnly,
		primary:  cfg.Primary,
		reg:      metrics.NewRegistry(),
	}
	s.filter.Store(cfg.Filter)
	// The coalescer dispatches through the server, not a pinned filter,
	// so micro-batches formed before a SwapFilter land on the new filter.
	s.co = NewCoalescer(serverBatcher{s}, cfg.Coalesce)

	s.mContains = s.reg.Counter(`habfserved_requests_total{endpoint="contains"}`, "Requests by endpoint.")
	s.mContainsBatch = s.reg.Counter(`habfserved_requests_total{endpoint="contains_batch"}`, "Requests by endpoint.")
	s.mAdd = s.reg.Counter(`habfserved_requests_total{endpoint="add"}`, "Requests by endpoint.")
	s.mSnapshots = s.reg.Counter(`habfserved_requests_total{endpoint="snapshot"}`, "Requests by endpoint.")
	s.mBatchKeys = s.reg.Counter("habfserved_batch_keys_total", "Keys queried through /v1/contains_batch.")
	s.mErrors = s.reg.Counter("habfserved_request_errors_total", "Requests rejected with a 4xx/5xx status.")
	s.hContains = s.reg.Histogram("habfserved_contains_duration_seconds",
		"End-to-end handler latency of /v1/contains.", metrics.DurationBuckets())
	s.hBatchSize = s.reg.Histogram("habfserved_batch_size_keys",
		"Batch sizes seen by /v1/contains_batch.", metrics.SizeBuckets(1<<16))
	s.hCoalesceSize = s.reg.Histogram("habfserved_coalesce_batch_size_keys",
		"Micro-batch sizes formed by the request coalescer.", metrics.SizeBuckets(1<<12))
	s.co.onBatch = func(n int) { s.hCoalesceSize.Observe(float64(n)) }

	s.mBinContains = s.reg.Counter(`habfserved_requests_total{endpoint="binary_contains"}`, "Requests by endpoint.")
	s.mBinBatch = s.reg.Counter(`habfserved_requests_total{endpoint="binary_contains_batch"}`, "Requests by endpoint.")
	s.mBinAdd = s.reg.Counter(`habfserved_requests_total{endpoint="binary_add"}`, "Requests by endpoint.")
	s.mBinPing = s.reg.Counter(`habfserved_requests_total{endpoint="binary_ping"}`, "Requests by endpoint.")
	s.mBinEpoch = s.reg.Counter(`habfserved_requests_total{endpoint="binary_epoch"}`, "Requests by endpoint.")
	s.hBinContains = s.reg.Histogram("habfserved_binary_contains_duration_seconds",
		"Handler latency of binary-protocol contains frames (decode to encode).", metrics.DurationBuckets())
	s.hBinBatch = s.reg.Histogram("habfserved_binary_batch_duration_seconds",
		"Handler latency of binary-protocol contains_batch frames.", metrics.DurationBuckets())
	s.reg.Gauge("habfserved_binary_connections", "Open binary-protocol connections.",
		func() float64 { return float64(s.binConns.Load()) })

	s.reg.Gauge(fmt.Sprintf(`habfserved_backend_info{backend=%q,filter=%q}`, cfg.Filter.Backend(), cfg.Filter.Name()),
		"Constant 1; labels identify the serving filter backend.",
		func() float64 { return 1 })
	s.reg.Gauge("habfserved_filter_epoch", "Filter mutation epoch (Adds + rebuild swaps + absorbs, summed across shards).",
		func() float64 { return float64(s.Filter().Epoch()) })
	s.reg.Gauge("habfserved_filter_keys", "Positive keys currently represented.",
		func() float64 { return float64(s.Filter().Stats().Keys) })
	s.reg.Gauge("habfserved_filter_size_bits", "Query-time footprint in bits.",
		func() float64 { return float64(s.Filter().SizeBits()) })
	s.reg.Gauge("habfserved_filter_shards", "Shard count.",
		func() float64 { return float64(s.Filter().NumShards()) })
	s.reg.Gauge("habfserved_filter_rebuilds", "Completed background rebuilds.",
		func() float64 { return float64(s.Filter().Stats().Rebuilds) })
	s.reg.Gauge("habfserved_filter_pending_keys", "Static-backend Adds buffered outside the shard filters (bounded by the backend's absorb knob on restored sets).",
		func() float64 { return float64(s.Filter().Stats().Pending) })
	s.reg.Gauge("habfserved_filter_restored_shards", "Shards serving a snapshot-restored filter (no drift rebuilds).",
		func() float64 { return float64(s.Filter().Stats().Restored) })
	s.reg.Gauge("habfserved_filter_absorbs", "Pending maps absorbed into mutable sidecars on restored shards.",
		func() float64 { return float64(s.Filter().Stats().Absorbs) })
	s.reg.Gauge("habfserved_coalesce_batches", "Micro-batches dispatched.",
		func() float64 { return float64(s.co.Stats().Batches) })
	s.reg.Gauge("habfserved_coalesce_keys", "Keys answered through micro-batches.",
		func() float64 { return float64(s.co.Stats().Keys) })

	mux := http.NewServeMux()
	mux.HandleFunc("/v1/contains", s.handleContains)
	mux.HandleFunc("/v1/contains_batch", s.handleContainsBatch)
	mux.HandleFunc("/v1/add", s.handleAdd)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/snapshot", s.handleSnapshot)
	mux.HandleFunc("/v1/epoch", s.handleEpoch)
	mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux = mux
	return s, nil
}

// Handler returns the root handler for use with an http.Server.
func (s *Server) Handler() http.Handler { return s.mux }

// Filter returns the currently served filter. Handlers load it once per
// request, so a concurrent SwapFilter gives each request a consistent
// filter without ever blocking one.
func (s *Server) Filter() *habf.Sharded { return s.filter.Load() }

// SwapFilter atomically replaces the served filter and returns the
// previous one. In-flight requests finish against whichever filter they
// loaded; new requests (and coalesced micro-batches formed after the
// swap) see next. The backends must match — swapping a follower onto a
// different filter family mid-serve would invalidate the registered
// backend metrics and every client's expectations about tuning.
func (s *Server) SwapFilter(next *habf.Sharded) (*habf.Sharded, error) {
	if next == nil {
		return nil, fmt.Errorf("server: nil filter")
	}
	if cur := s.Filter(); cur.Backend() != next.Backend() {
		return nil, fmt.Errorf("server: cannot swap backend %q in over %q", next.Backend(), cur.Backend())
	}
	return s.filter.Swap(next), nil
}

// Metrics exposes the server's registry so the daemon can register
// process-level series beside the built-in ones (replication lag,
// resync counters in follower mode).
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// serverBatcher adapts the server's swappable filter to the coalescer's
// Batcher interface: every dispatch resolves the filter at call time.
type serverBatcher struct{ s *Server }

func (b serverBatcher) Contains(key []byte) bool           { return b.s.Filter().Contains(key) }
func (b serverBatcher) ContainsBatch(keys [][]byte) []bool { return b.s.Filter().ContainsBatch(keys) }
func (b serverBatcher) ContainsBatchInto(dst []bool, keys [][]byte) {
	b.s.Filter().ContainsBatchInto(dst, keys)
}

// Coalescer exposes the coalescing layer (stats, direct benchmarking).
func (s *Server) Coalescer() *Coalescer { return s.co }

// Close drains the coalescing layer. Call after the http.Server has
// stopped accepting requests (e.g. via Shutdown); handlers still running
// during the drain keep getting correct answers on the direct path.
func (s *Server) Close() { s.co.Close() }

// Snapshot writes the filter's current state to path (or the configured
// default when path is empty) via the crash-safe SaveFile.
func (s *Server) Snapshot(path string) (string, time.Duration, error) {
	if path == "" {
		path = s.snapPath
	}
	if path == "" {
		return "", 0, fmt.Errorf("server: no snapshot path configured")
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	start := time.Now()
	if err := s.Filter().SaveFile(path); err != nil {
		return "", 0, err
	}
	return path, time.Since(start), nil
}

func (s *Server) fail(w http.ResponseWriter, code int, format string, args ...any) {
	s.mErrors.Inc()
	http.Error(w, fmt.Sprintf(format, args...), code)
}

// failErr maps a request-decode error to its status: 413 for oversized
// bodies, 400 for everything else malformed.
func (s *Server) failErr(w http.ResponseWriter, endpoint string, err error) {
	code := http.StatusBadRequest
	if errors.Is(err, errBodyTooLarge) {
		code = http.StatusRequestEntityTooLarge
	}
	s.fail(w, code, "%s: %v", endpoint, err)
}

// readBody reads a request body of at most maxBodyBytes. It reads one
// byte past the limit so an oversized body is detected and rejected
// rather than silently truncated to a prefix.
func readBody(r *http.Request) ([]byte, error) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		return nil, err
	}
	if len(body) > maxBodyBytes {
		return nil, errBodyTooLarge
	}
	return body, nil
}

// rawRequest reports whether the request declares a raw octet-stream
// body. The Content-Type is parsed as a media type, so parameterized
// forms ("application/octet-stream; charset=binary") select the raw
// path too; a present-but-unparseable header is an error, not a silent
// fall-through to JSON.
func rawRequest(r *http.Request) (bool, error) {
	ct := r.Header.Get("Content-Type")
	if ct == "" {
		return false, nil
	}
	mt, _, err := mime.ParseMediaType(ct)
	if err != nil {
		return false, fmt.Errorf("bad Content-Type %q: %v", ct, err)
	}
	return mt == "application/octet-stream", nil
}

// readKey extracts the key from a contains/add request: raw bytes for
// application/octet-stream, else JSON {"key": base64}. Empty keys are
// rejected here so /v1/contains and /v1/add agree — an empty-bodied
// contains must not get a confident answer for the empty key.
func readKey(r *http.Request) ([]byte, bool, error) {
	raw, err := rawRequest(r)
	if err != nil {
		return nil, false, err
	}
	body, err := readBody(r)
	if err != nil {
		return nil, false, err
	}
	key := body
	if !raw {
		var req struct {
			Key []byte `json:"key"`
		}
		if err := json.Unmarshal(body, &req); err != nil {
			return nil, false, fmt.Errorf("bad JSON body: %w", err)
		}
		if req.Key == nil {
			return nil, false, fmt.Errorf(`missing "key"`)
		}
		key = req.Key
	}
	if len(key) == 0 {
		return nil, raw, errors.New("empty key")
	}
	return key, raw, nil
}

func (s *Server) handleContains(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	start := time.Now()
	key, raw, err := readKey(r)
	if err != nil {
		s.failErr(w, "contains", err)
		return
	}
	present := s.co.Contains(key)
	s.mContains.Inc()
	if raw {
		if present {
			io.WriteString(w, "1")
		} else {
			io.WriteString(w, "0")
		}
	} else {
		s.writeJSON(w, map[string]bool{"present": present})
	}
	s.hContains.ObserveDuration(time.Since(start))
}

func (s *Server) handleContainsBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	body, err := readBody(r)
	if err != nil {
		s.failErr(w, "contains_batch", err)
		return
	}
	var req struct {
		Keys [][]byte `json:"keys"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		s.fail(w, http.StatusBadRequest, "contains_batch: bad JSON body: %v", err)
		return
	}
	if len(req.Keys) == 0 {
		s.fail(w, http.StatusBadRequest, `contains_batch: missing "keys"`)
		return
	}
	for i, k := range req.Keys {
		if len(k) == 0 {
			s.fail(w, http.StatusBadRequest, "contains_batch: empty key at index %d", i)
			return
		}
	}
	pb := resultBufPool.Get().(*[]bool)
	if cap(*pb) < len(req.Keys) {
		*pb = make([]bool, len(req.Keys))
	}
	present := (*pb)[:len(req.Keys)]
	s.Filter().ContainsBatchInto(present, req.Keys)
	s.mContainsBatch.Inc()
	s.mBatchKeys.Add(uint64(len(req.Keys)))
	s.hBatchSize.Observe(float64(len(req.Keys)))
	s.writeJSON(w, map[string][]bool{"present": present})
	// writeJSON is synchronous, so the buffer is free again here. The
	// pool holds *[]bool and the same pointer rides back in, keeping the
	// round trip allocation-free.
	resultBufPool.Put(pb)
}

// resultBufPool recycles batch result slices across HTTP requests. A
// buffer is owned from Get to Put; nothing may retain it past the
// response write.
var resultBufPool = sync.Pool{New: func() any { return new([]bool) }}

func (s *Server) handleAdd(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.readOnly {
		// A follower never accepts writes — its filter is a restored
		// snapshot that the next resync would silently overwrite. Point
		// the writer at the primary; 307 preserves method and body, so a
		// client that follows redirects retries the identical POST there.
		s.mErrors.Inc()
		if s.primary != "" {
			w.Header().Set("Location", strings.TrimSuffix(s.primary, "/")+"/v1/add")
			http.Error(w, "read-only follower: add at the primary", http.StatusTemporaryRedirect)
		} else {
			http.Error(w, "read-only follower: no primary configured", http.StatusForbidden)
		}
		return
	}
	key, raw, err := readKey(r)
	if err != nil {
		s.failErr(w, "add", err)
		return
	}
	s.Filter().Add(key)
	s.mAdd.Inc()
	if raw {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	s.writeJSON(w, map[string]bool{"ok": true})
}

// statsResponse is the /v1/stats document.
type statsResponse struct {
	Name     string           `json:"name"`
	Backend  string           `json:"backend"`
	Tuning   string           `json:"tuning"`
	Role     string           `json:"role"`
	Primary  string           `json:"primary,omitempty"`
	Epoch    uint64           `json:"epoch"`
	Keys     uint64           `json:"keys"`
	Added    uint64           `json:"added"`
	Pending  uint64           `json:"pending"`
	Rebuilds uint64           `json:"rebuilds"`
	Absorbs  uint64           `json:"absorbs"`
	Restored int              `json:"restored_shards"`
	SizeBits uint64           `json:"size_bits"`
	Shards   []habf.ShardInfo `json:"shards"`
	Coalesce CoalesceStats    `json:"coalesce"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	f := s.Filter()
	st := f.Stats()
	role := "primary"
	if s.readOnly {
		role = "follower"
	}
	s.writeJSON(w, statsResponse{
		Name:     f.Name(),
		Backend:  f.Backend(),
		Tuning:   f.Tuning(),
		Role:     role,
		Primary:  s.primary,
		Epoch:    f.Epoch(),
		Keys:     st.Keys,
		Added:    st.Added,
		Pending:  st.Pending,
		Rebuilds: st.Rebuilds,
		Absorbs:  st.Absorbs,
		Restored: st.Restored,
		SizeBits: st.SizeBits,
		Shards:   f.ShardInfos(),
		Coalesce: s.co.Stats(),
	})
}

// handleSnapshot serves two verbs on one path: POST writes a crash-safe
// checkpoint to a server-side file (the operator form), GET streams the
// same container to the caller (the replication form — a follower's
// bootstrap and resync both ride it).
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodGet {
		s.handleSnapshotDownload(w)
		return
	}
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "GET or POST required")
		return
	}
	var req struct {
		Path string `json:"path"`
	}
	if r.ContentLength != 0 {
		body, err := readBody(r)
		if err != nil {
			s.failErr(w, "snapshot", err)
			return
		}
		if err := json.Unmarshal(body, &req); err != nil {
			s.fail(w, http.StatusBadRequest, "snapshot: bad JSON body: %v", err)
			return
		}
	}
	if req.Path == "" && s.snapPath == "" {
		s.fail(w, http.StatusBadRequest, "snapshot: no path given and no default configured")
		return
	}
	path, took, err := s.Snapshot(req.Path)
	if err != nil {
		s.fail(w, http.StatusInternalServerError, "snapshot: %v", err)
		return
	}
	s.mSnapshots.Inc()
	s.writeJSON(w, map[string]any{
		"path": path,
		"ms":   float64(took.Microseconds()) / 1e3,
	})
}

// handleSnapshotDownload streams the filter's serving state as a
// snapshot container — exactly the bytes SaveFile would write, so the
// receiver restores it with habf.Load. The X-Habf-Epoch header carries
// the filter's mutation epoch sampled before framing begins: writes
// that land mid-stream may or may not be captured, so the header is the
// conservative "at least this fresh" stamp a follower records as its
// synced epoch (if the primary has since moved past it, the next poll
// triggers another sync — never a false "up to date").
func (s *Server) handleSnapshotDownload(w http.ResponseWriter) {
	f := s.Filter()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Habf-Epoch", strconv.FormatUint(f.Epoch(), 10))
	w.Header().Set("X-Habf-Backend", f.Backend())
	if err := f.Save(w); err != nil {
		// Headers are gone; all we can do is count it and cut the body
		// short so the client's container checksum fails loudly.
		s.mErrors.Inc()
		return
	}
	s.mSnapshots.Inc()
}

// handleEpoch answers the filter's mutation epoch as decimal text — the
// smallest possible freshness probe, cheap enough for every follower
// and router to poll at high frequency.
func (s *Server) handleEpoch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, strconv.FormatUint(s.Filter().Epoch(), 10))
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
}

func (s *Server) writeJSON(w http.ResponseWriter, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		// An encode failure is a served error like any other 5xx and must
		// show up in the error counter, not vanish from the metrics.
		s.fail(w, http.StatusInternalServerError, "encode: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(b)))
	w.Write(b)
}
