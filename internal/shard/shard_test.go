package shard

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/habf"
)

func fixture(n int) ([][]byte, []habf.WeightedKey, [][]byte) {
	pos := make([][]byte, n)
	neg := make([]habf.WeightedKey, n)
	negKeys := make([][]byte, n)
	for i := 0; i < n; i++ {
		pos[i] = []byte(fmt.Sprintf("member-%06d", i))
		negKeys[i] = []byte(fmt.Sprintf("absent-%06d", i))
		neg[i] = habf.WeightedKey{Key: negKeys[i], Cost: float64(n - i)}
	}
	return pos, neg, negKeys
}

func newSet(t testing.TB, n int, cfg Config) (*Set, [][]byte, [][]byte) {
	t.Helper()
	pos, neg, negKeys := fixture(n)
	if cfg.TotalBits == 0 {
		cfg.TotalBits = uint64(12 * n)
	}
	s, err := New(pos, neg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, pos, negKeys
}

func TestNoFalseNegatives(t *testing.T) {
	s, pos, _ := newSet(t, 5000, Config{Shards: 8})
	for _, key := range pos {
		if !s.Contains(key) {
			t.Fatalf("false negative for %q", key)
		}
	}
}

func TestBatchMatchesPerKey(t *testing.T) {
	s, pos, negKeys := newSet(t, 3000, Config{Shards: 8})
	probe := append(append([][]byte{}, pos...), negKeys...)
	got := s.ContainsBatch(probe)
	for i, key := range probe {
		if want := s.Contains(key); got[i] != want {
			t.Fatalf("key %q: batch=%v per-key=%v", key, got[i], want)
		}
	}
}

func TestShardingReducesWeightedFPRLikeSingleFilter(t *testing.T) {
	// A sharded filter is still an HABF per shard: the weighted FPR over
	// the known negatives must stay in the same regime as a single filter
	// at equal space (it is not required to be identical — routing splits
	// the optimization problem).
	pos, neg, negKeys := fixture(8000)
	bitsTotal := uint64(12 * len(pos))
	single, err := habf.New(pos, neg, habf.Params{TotalBits: bitsTotal})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(pos, neg, Config{Shards: 8, TotalBits: bitsTotal})
	if err != nil {
		t.Fatal(err)
	}
	count := func(contains func([]byte) bool) int {
		fp := 0
		for _, key := range negKeys {
			if contains(key) {
				fp++
			}
		}
		return fp
	}
	fpSingle := count(single.Contains)
	fpSharded := count(s.Contains)
	t.Logf("false positives over %d known negatives: single=%d sharded=%d", len(negKeys), fpSingle, fpSharded)
	// Known negatives are what HABF optimizes away; both should keep them
	// near zero. Allow the sharded one a small constant slack.
	if fpSharded > fpSingle+len(negKeys)/100 {
		t.Fatalf("sharding degraded known-negative FPs: single=%d sharded=%d", fpSingle, fpSharded)
	}
}

func TestShardCountRounding(t *testing.T) {
	s, _, _ := newSet(t, 500, Config{Shards: 6})
	if s.NumShards() != 8 {
		t.Fatalf("Shards=6 should round to 8, got %d", s.NumShards())
	}
	s1, _, _ := newSet(t, 500, Config{Shards: 1})
	if s1.NumShards() != 1 {
		t.Fatalf("Shards=1 got %d", s1.NumShards())
	}
	if !s1.Contains([]byte("member-000001")) {
		t.Fatal("single-shard set lost a key")
	}
	sd, _, _ := newSet(t, 500, Config{})
	if sd.NumShards() != DefaultShards {
		t.Fatalf("default shards = %d, want %d", sd.NumShards(), DefaultShards)
	}
}

func TestAddThenContains(t *testing.T) {
	s, _, _ := newSet(t, 2000, Config{Shards: 4, RebuildThreshold: -1})
	fresh := make([][]byte, 500)
	for i := range fresh {
		fresh[i] = []byte(fmt.Sprintf("late-%06d", i))
		s.Add(fresh[i])
		if !s.Contains(fresh[i]) {
			t.Fatalf("key %q not visible immediately after Add", fresh[i])
		}
	}
	for _, ok := range s.ContainsBatch(fresh) {
		if !ok {
			t.Fatal("batch lost an added key")
		}
	}
	if st := s.Stats(); st.Rebuilds != 0 {
		t.Fatalf("rebuilds ran with threshold disabled: %+v", st)
	}
}

func TestBackgroundRebuildFoldsAddsIn(t *testing.T) {
	s, pos, _ := newSet(t, 2000, Config{Shards: 4, RebuildThreshold: 0.01})
	var fresh [][]byte
	for i := 0; i < 400; i++ {
		k := []byte(fmt.Sprintf("late-%06d", i))
		fresh = append(fresh, k)
		s.Add(k)
	}
	s.WaitRebuilds()
	st := s.Stats()
	if st.Rebuilds == 0 {
		t.Fatalf("expected background rebuilds at threshold 1%%: %+v", st)
	}
	if st.RebuildErrors != 0 {
		t.Fatalf("rebuild errors: %+v", st)
	}
	for _, key := range append(append([][]byte{}, pos...), fresh...) {
		if !s.Contains(key) {
			t.Fatalf("false negative for %q after rebuild", key)
		}
	}
	if st.Keys != uint64(len(pos)+len(fresh)) {
		t.Fatalf("Stats.Keys = %d, want %d", st.Keys, len(pos)+len(fresh))
	}
}

func TestEmptyShardServesAndFills(t *testing.T) {
	// One positive key: most shards come up empty yet must answer.
	one := [][]byte{[]byte("only")}
	s, err := New(one, nil, Config{Shards: 8, TotalBits: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Contains(one[0]) {
		t.Fatal("false negative on singleton")
	}
	if s.Contains([]byte("someone-else")) {
		t.Log("false positive on empty-ish set (possible, not fatal)")
	}
	// Adds route into empty shards and must lazily build them.
	for i := 0; i < 64; i++ {
		k := []byte(fmt.Sprintf("grown-%03d", i))
		s.Add(k)
		if !s.Contains(k) {
			t.Fatalf("empty shard did not absorb %q", k)
		}
	}
}

func TestEmptyPositivesRejected(t *testing.T) {
	if _, err := New(nil, nil, Config{TotalBits: 1024}); err == nil {
		t.Fatal("New accepted an empty positive set")
	}
}

func TestDeterministicConstruction(t *testing.T) {
	pos, neg, negKeys := fixture(2000)
	cfg := Config{Shards: 8, TotalBits: uint64(12 * len(pos)), Params: habf.Params{Seed: 7}}
	a, err := New(pos, neg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(pos, neg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range negKeys {
		if a.Contains(key) != b.Contains(key) {
			t.Fatalf("same seed, different answer for %q", key)
		}
	}
}

// TestConcurrentAddAndQuery exercises the headline concurrency contract
// under the race detector: many readers, many writers, background
// rebuilds — no external locking anywhere.
func TestConcurrentAddAndQuery(t *testing.T) {
	s, pos, negKeys := newSet(t, 4000, Config{Shards: 8, RebuildThreshold: 0.01})

	const writers = 2
	const perWriter = 300
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				s.Add([]byte(fmt.Sprintf("hot-%d-%06d", w, i)))
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			batch := make([][]byte, 0, 64)
			for i := 0; i < 2000; i++ {
				key := pos[(i*7+r)%len(pos)]
				if !s.Contains(key) {
					t.Errorf("false negative for %q under concurrency", key)
					return
				}
				batch = append(batch, key, negKeys[(i*3+r)%len(negKeys)])
				if len(batch) == cap(batch) {
					for j, ok := range s.ContainsBatch(batch) {
						if j%2 == 0 && !ok {
							t.Errorf("batch false negative under concurrency")
							return
						}
					}
					batch = batch[:0]
				}
			}
		}(r)
	}
	wg.Wait()
	s.WaitRebuilds()

	st := s.Stats()
	if st.RebuildErrors != 0 {
		t.Fatalf("rebuild errors: %+v", st)
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			key := []byte(fmt.Sprintf("hot-%d-%06d", w, i))
			if !s.Contains(key) {
				t.Fatalf("added key %q lost", key)
			}
		}
	}
}
