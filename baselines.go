package habf

import (
	"fmt"

	"repro/internal/bloom"
	"repro/internal/learned"
	"repro/internal/phbf"
	"repro/internal/wbf"
	"repro/internal/xorfilter"
)

// BloomStrategy selects how a standard Bloom filter derives its k bit
// positions; see Fig. 14 of the paper.
type BloomStrategy int

const (
	// BloomCorpus uses k distinct functions from the Table II corpus
	// (the paper's plain "BF").
	BloomCorpus BloomStrategy = iota
	// BloomSeeded64 re-seeds one City-style 64-bit hash k times
	// (the paper's "BF(City64)").
	BloomSeeded64
	// BloomSplit128 double-hashes the two lanes of a 128-bit hash
	// (the paper's "BF(XXH128)").
	BloomSplit128
)

// Bloom is the standard Bloom filter baseline.
type Bloom struct{ inner *bloom.Filter }

var _ Filter = (*Bloom)(nil)

// NewBloom builds a Bloom filter over keys at the given bits-per-key with
// the FPR-optimal hash count k = ln2·b.
func NewBloom(keys [][]byte, bitsPerKey float64, strategy BloomStrategy) (*Bloom, error) {
	var s bloom.Strategy
	switch strategy {
	case BloomCorpus:
		s = bloom.StrategyCorpus
	case BloomSeeded64:
		s = bloom.StrategySeeded64
	case BloomSplit128:
		s = bloom.StrategySplit128
	default:
		return nil, fmt.Errorf("habf: unknown bloom strategy %d", strategy)
	}
	inner, err := bloom.NewWithKeys(keys, bitsPerKey, s)
	if err != nil {
		return nil, fmt.Errorf("habf: %w", err)
	}
	return &Bloom{inner: inner}, nil
}

// Contains reports possible membership.
func (f *Bloom) Contains(key []byte) bool { return f.inner.Contains(key) }

// Name returns the strategy's paper name.
func (f *Bloom) Name() string { return f.inner.Name() }

// SizeBits returns the bit-array footprint.
func (f *Bloom) SizeBits() uint64 { return f.inner.SizeBits() }

// Xor is the Xor filter baseline (Graf & Lemire 2020).
type Xor struct{ inner *xorfilter.Filter }

var _ Filter = (*Xor)(nil)

// NewXor builds a Xor filter over keys whose fingerprint width is derived
// from the bits-per-key budget (⌊b/(1.23+32/n)⌋, §V-A). Keys must be
// unique.
func NewXor(keys [][]byte, bitsPerKey float64) (*Xor, error) {
	inner, err := xorfilter.NewWithBudget(keys, bitsPerKey)
	if err != nil {
		return nil, fmt.Errorf("habf: %w", err)
	}
	return &Xor{inner: inner}, nil
}

// Contains reports possible membership.
func (f *Xor) Contains(key []byte) bool { return f.inner.Contains(key) }

// Name returns "Xor".
func (f *Xor) Name() string { return f.inner.Name() }

// SizeBits returns the fingerprint-table footprint.
func (f *Xor) SizeBits() uint64 { return f.inner.SizeBits() }

// WBF is the Weighted Bloom filter baseline (Bruck et al. 2006).
type WBF struct{ inner *wbf.Filter }

var _ Filter = (*WBF)(nil)

// NewWBF builds a WBF over positives, allocating per-key hash counts from
// the negative keys' costs; the costliest negatives' hash counts are
// cached for query time.
func NewWBF(positives [][]byte, negatives []WeightedKey, totalBits uint64) (*WBF, error) {
	conv := make([]wbf.WeightedKey, len(negatives))
	for i, n := range negatives {
		conv[i] = wbf.WeightedKey{Key: n.Key, Cost: n.Cost}
	}
	inner, err := wbf.New(positives, conv, wbf.Config{TotalBits: totalBits})
	if err != nil {
		return nil, fmt.Errorf("habf: %w", err)
	}
	return &WBF{inner: inner}, nil
}

// Contains reports possible membership.
func (f *WBF) Contains(key []byte) bool { return f.inner.Contains(key) }

// Name returns "WBF".
func (f *WBF) Name() string { return f.inner.Name() }

// SizeBits returns the bit-array footprint (cost cache excluded, as in
// the paper's space accounting).
func (f *WBF) SizeBits() uint64 { return f.inner.SizeBits() }

// Learned wraps the three learning-based baselines behind Filter.
type Learned struct {
	inner interface {
		Contains([]byte) bool
		Name() string
		SizeBits() uint64
	}
}

var _ Filter = (*Learned)(nil)

// NewLBF trains and assembles Kraska et al.'s Learned Bloom filter within
// totalBits (classifier parameters + backup filter).
func NewLBF(positives, negatives [][]byte, totalBits uint64) (*Learned, error) {
	inner, err := learned.NewLBF(positives, negatives, totalBits, learned.TrainConfig{})
	if err != nil {
		return nil, fmt.Errorf("habf: %w", err)
	}
	return &Learned{inner: inner}, nil
}

// NewLBFGRU builds an LBF whose classifier is the paper's actual model: a
// 16-dimensional character-level GRU with a 32-dimensional embedding
// layer, trained from scratch with BPTT. Roughly an order of magnitude
// slower to train and score than NewLBF's hashed-trigram model — which is
// the paper's point about learned filters — so the experiment harness
// defaults to the cheap model and this constructor exists for fidelity.
func NewLBFGRU(positives, negatives [][]byte, totalBits uint64) (*Learned, error) {
	inner, err := learned.NewLBFWithGRU(positives, negatives, totalBits)
	if err != nil {
		return nil, fmt.Errorf("habf: %w", err)
	}
	return &Learned{inner: inner}, nil
}

// NewSLBF trains and assembles Mitzenmacher's Sandwiched LBF.
func NewSLBF(positives, negatives [][]byte, totalBits uint64) (*Learned, error) {
	inner, err := learned.NewSLBF(positives, negatives, totalBits, learned.TrainConfig{})
	if err != nil {
		return nil, fmt.Errorf("habf: %w", err)
	}
	return &Learned{inner: inner}, nil
}

// NewAdaBF trains and assembles Dai & Shrivastava's Adaptive LBF.
func NewAdaBF(positives, negatives [][]byte, totalBits uint64) (*Learned, error) {
	inner, err := learned.NewAdaBF(positives, negatives, totalBits, learned.TrainConfig{})
	if err != nil {
		return nil, fmt.Errorf("habf: %w", err)
	}
	return &Learned{inner: inner}, nil
}

// Contains reports possible membership.
func (f *Learned) Contains(key []byte) bool { return f.inner.Contains(key) }

// Name returns "LBF", "SLBF" or "Ada-BF".
func (f *Learned) Name() string { return f.inner.Name() }

// SizeBits returns model plus filter footprint.
func (f *Learned) SizeBits() uint64 { return f.inner.SizeBits() }

// PHBF is the partitioned-hashing Bloom filter of Hao et al. (SIGMETRICS
// 2007) — per-group hash customization, the closest prior work to HABF
// (§II of the paper).
type PHBF struct{ inner *phbf.Filter }

var _ Filter = (*PHBF)(nil)

// NewPHBF builds a partitioned-hashing Bloom filter over keys within
// totalBits, greedily choosing one hash seed per key group to minimize
// set bits.
func NewPHBF(keys [][]byte, totalBits uint64) (*PHBF, error) {
	inner, err := phbf.New(keys, phbf.Config{TotalBits: totalBits})
	if err != nil {
		return nil, fmt.Errorf("habf: %w", err)
	}
	return &PHBF{inner: inner}, nil
}

// Contains reports possible membership.
func (f *PHBF) Contains(key []byte) bool { return f.inner.Contains(key) }

// Name returns "PHBF".
func (f *PHBF) Name() string { return f.inner.Name() }

// SizeBits returns bit array plus per-group seed metadata.
func (f *PHBF) SizeBits() uint64 { return f.inner.SizeBits() }

// IncrementalMode selects the adaptation strategy of NewIncrementalLBF.
type IncrementalMode = learned.IncrementalMode

// Re-exported incremental modes (Bhattacharya et al., §II of the paper).
const (
	// ClassifierAdaptive (CA-LBF) periodically retrains the classifier.
	ClassifierAdaptive = learned.ClassifierAdaptive
	// IndexAdaptive (IA-LBF) grows the backup filter instead.
	IndexAdaptive = learned.IndexAdaptive
)

// IncrementalLBF is a learned filter that accepts inserts after
// construction while preserving zero false negatives.
type IncrementalLBF struct{ inner *learned.IncrementalLBF }

var _ Filter = (*IncrementalLBF)(nil)

// NewIncrementalLBF trains an initial model over the labelled sets and
// returns a filter that supports Insert. backupBits budgets the backup
// filter; IA-LBF grows it as needed.
func NewIncrementalLBF(mode IncrementalMode, positives, negatives [][]byte, backupBits uint64) (*IncrementalLBF, error) {
	inner, err := learned.NewIncremental(mode, positives, negatives, learned.IncrementalConfig{
		BackupBits: backupBits,
	})
	if err != nil {
		return nil, fmt.Errorf("habf: %w", err)
	}
	return &IncrementalLBF{inner: inner}, nil
}

// Insert adds a key to the member set; it is queryable immediately.
func (f *IncrementalLBF) Insert(key []byte) { f.inner.Insert(key) }

// Contains reports possible membership.
func (f *IncrementalLBF) Contains(key []byte) bool { return f.inner.Contains(key) }

// Name returns "CA-LBF" or "IA-LBF".
func (f *IncrementalLBF) Name() string { return f.inner.Name() }

// SizeBits returns the current model plus backup footprint.
func (f *IncrementalLBF) SizeBits() uint64 { return f.inner.SizeBits() }
