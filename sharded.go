package habf

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/filtercore"
	"repro/internal/shard"
	"repro/internal/snapshot"
)

// Sharded is an HABF partitioned across N independent shards by
// fingerprint-prefix routing — the serving-layer form of the filter.
//
// Where a plain *HABF requires external synchronization between Add and
// readers, a *Sharded is safe for fully concurrent use: any number of
// goroutines may call Contains, ContainsBatch and Add with no locking.
// Shards build in parallel at construction; Add takes only the owning
// shard's lock; and once a shard accumulates post-construction Adds past
// the rebuild threshold it is re-optimized in the background and swapped
// in atomically while every other shard keeps serving.
type Sharded struct {
	set *shard.Set
}

var _ Filter = (*Sharded)(nil)

// ShardedOption customizes NewSharded beyond its defaults (8 shards, 2%
// rebuild threshold, the paper's filter parameters per shard).
type ShardedOption func(*shard.Config)

// WithShards sets the shard count (rounded up to a power of two).
func WithShards(n int) ShardedOption {
	return func(c *shard.Config) { c.Shards = n }
}

// WithRebuildThreshold sets the fraction of post-build Adds (relative to
// the keys present at the last build) that triggers a background rebuild
// of a shard. Pass a negative value to disable background rebuilds.
func WithRebuildThreshold(t float64) ShardedOption {
	return func(c *shard.Config) { c.RebuildThreshold = t }
}

// WithShardFilterOptions applies per-filter Options (WithK, WithSeed,
// WithCellBits, ...) to every shard's construction parameters.
func WithShardFilterOptions(opts ...Option) ShardedOption {
	return func(c *shard.Config) {
		for _, o := range opts {
			o(&c.Params)
		}
	}
}

// WithFastShards builds every shard as an f-HABF (double hashing), for
// workloads where construction and rebuild speed dominate.
func WithFastShards() ShardedOption {
	return func(c *shard.Config) { c.Params.Fast = true }
}

// WithBackend selects the filter family every shard is built with, by
// registry name — see Backends for what is available. The default is
// "habf", the paper's cost-aware filter; "bloom" serves the standard
// Bloom baseline (mutable, cost-oblivious), "wbf" the Weighted Bloom
// baseline (mutable and cost-aware: costly negatives get extra hash
// positions), and "xor" (Xor filter) and "phbf" (partitioned hashing)
// the static baselines, whose Adds are buffered as pending — still
// answered with zero false negatives — until a background rebuild
// absorbs them. Every backend rides the same sharding, batching,
// snapshot and serving machinery.
func WithBackend(name string) ShardedOption {
	return func(c *shard.Config) { c.Backend = name }
}

// Backends returns the names of every registered filter backend, sorted
// — the valid inputs to WithBackend.
func Backends() []string { return filtercore.Names() }

// WithTuning applies backend tuning knobs, each argument a "k=v" or
// "k=v,k=v" string validated against the selected backend's schema (see
// the README's Tuning section for every backend's knob table). Knobs
// left unset keep their defaults; unknown knobs, duplicates and
// out-of-bounds values make NewSharded fail. The effective knob set is
// durable: snapshots persist it and a restore rebuilds and reports it.
// For the "habf" backend the knobs and the legacy WithK/WithCellBits
// options configure the same fields — a set knob wins.
func WithTuning(kv ...string) ShardedOption {
	return func(c *shard.Config) {
		for _, s := range kv {
			if s == "" {
				continue
			}
			if c.Tuning != "" {
				c.Tuning += ","
			}
			c.Tuning += s
		}
	}
}

// Tuning returns the effective knob set in canonical form — every knob
// of the backend's schema with its explicit or default value, sorted,
// "k=v,k=v". Snapshots persist it (when non-default) and /v1/stats
// reports it.
func (s *Sharded) Tuning() string { return s.set.Tuning() }

// ParseTuning validates a tuning string against a backend's knob schema
// and returns its canonical full rendering — what Sharded.Tuning on a
// set built with those knobs reports. Operational surfaces use it to
// compare a requested tuning against a restored snapshot's without
// building anything.
func ParseTuning(backend, tuning string) (string, error) {
	f, err := filtercore.ByName(backend)
	if err != nil {
		return "", fmt.Errorf("habf: %w", err)
	}
	t, err := f.ParseTuning(tuning)
	if err != nil {
		return "", fmt.Errorf("habf: %w", err)
	}
	return t.String(), nil
}

// NewSharded builds a sharded HABF over positives within totalBits of
// memory, splitting the budget across shards in proportion to their key
// share. Negatives are routed to the shard their colliding positives
// live in, so per-shard TPJO sees exactly the conflicts it can fix.
func NewSharded(positives [][]byte, negatives []WeightedKey, totalBits uint64, opts ...ShardedOption) (*Sharded, error) {
	cfg := shard.Config{TotalBits: totalBits}
	for _, o := range opts {
		o(&cfg)
	}
	set, err := shard.New(positives, convertNegatives(negatives), cfg)
	if err != nil {
		return nil, fmt.Errorf("habf: %w", err)
	}
	return &Sharded{set: set}, nil
}

// Contains reports whether key may be a member (no false negatives).
// Safe for any number of concurrent callers, including concurrent Adds.
func (s *Sharded) Contains(key []byte) bool { return s.set.Contains(key) }

// ContainsBatch answers one result per key, in order. Keys are grouped by
// shard so each shard's lock is taken once per batch and per-call setup
// is amortized across the group — the preferred query path for serving
// loops that already hold a batch of requests.
func (s *Sharded) ContainsBatch(keys [][]byte) []bool { return s.set.ContainsBatch(keys) }

// ContainsBatchInto is ContainsBatch writing into a caller-owned result
// slice: dst[i] answers keys[i], and len(dst) must be at least
// len(keys). It allocates nothing in steady state, so serving loops that
// reuse a result buffer across batches query with zero garbage. The
// slice is fully overwritten in [0, len(keys)) and not retained.
func (s *Sharded) ContainsBatchInto(dst []bool, keys [][]byte) { s.set.ContainsBatchInto(dst, keys) }

// Add inserts a key, locking only the owning shard. The key is queryable
// as soon as Add returns, and the zero-false-negative guarantee holds
// across any background rebuilds it may trigger.
func (s *Sharded) Add(key []byte) { s.set.Add(key) }

// Name identifies the filter variant, e.g. "Sharded[8×HABF]".
func (s *Sharded) Name() string { return s.set.Name() }

// SizeBits returns the summed query-time footprint of every shard.
func (s *Sharded) SizeBits() uint64 { return s.set.SizeBits() }

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return s.set.NumShards() }

// Epoch returns the filter's mutation epoch — a counter that advances
// on every Add, background rebuild swap and pending absorb, summed
// across shards. Replication uses it as the freshness signal: a
// follower that restored a snapshot taken at epoch E is up to date
// exactly while the primary still reports E.
func (s *Sharded) Epoch() uint64 { return s.set.Epoch() }

// Backend returns the registry name of the filter backend every shard
// uses ("habf", "bloom", "xor", ...).
func (s *Sharded) Backend() string { return s.set.Backend() }

// WaitRebuilds blocks until in-flight background rebuilds finish.
// Intended for tests and orderly shutdown; serving paths never need it.
func (s *Sharded) WaitRebuilds() { s.set.WaitRebuilds() }

// ShardStats is a point-in-time summary across shards.
type ShardStats = shard.Stats

// Stats snapshots per-shard totals (keys, pending Adds, rebuilds, size).
func (s *Sharded) Stats() ShardStats { return s.set.Stats() }

// ShardInfo is the per-shard detail behind Stats (keys, drift, mutation
// epoch, restore/rebuild state) — what a serving daemon's stats endpoint
// reports per shard.
type ShardInfo = shard.ShardInfo

// ShardInfos samples every shard one at a time; totals are approximate
// under concurrent writes.
func (s *Sharded) ShardInfos() []ShardInfo { return s.set.ShardInfos() }

// Save writes a snapshot of the filter's serving state to w: a
// versioned, checksummed container (magic, per-shard CRC32C frames,
// footer with offsets) wrapping each shard's wire format. Save coexists
// with live traffic — readers are never blocked, an Add stalls only
// while its own shard is being framed, and background rebuilds land
// before or after their shard's frame — so every key whose Add returned
// before Save was called is captured; keys added concurrently may or may
// not be. A static-backend shard holding pending Adds is rebuilt
// synchronously before framing so those keys are captured too; on a
// *restored* static set that rebuild is impossible (no key list in
// memory), so the pending keys are written verbatim into the
// container's pending-keys frame instead and re-buffered at load —
// acked Adds stay durable across any number of save/restore cycles.
// The snapshot holds only query-time state: a restored filter
// answers Contains identically but carries no construction statistics
// and no key list (see Load). Frames stream to w one shard at a time,
// so Save's memory overhead is one shard's wire size, not the set's.
func (s *Sharded) Save(w io.Writer) error {
	if err := s.set.WriteSnapshot(w); err != nil {
		return fmt.Errorf("habf: save: %w", err)
	}
	return nil
}

// SaveFile writes a snapshot to path via a uniquely named temporary
// file, fsync and rename, so a crash — including power loss — never
// leaves a truncated snapshot behind: the data is durable before the
// rename makes it visible, and the parent directory is synced so the
// rename itself is. Concurrent SaveFile calls to the same path are safe
// (each save writes its own temp file; the last rename wins).
func (s *Sharded) SaveFile(path string) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("habf: save: %w", err)
	}
	tmp := f.Name()
	closed := false
	fail := func(err error) error {
		if !closed {
			f.Close()
		}
		os.Remove(tmp)
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	if err := s.Save(bw); err != nil {
		return fail(err) // already "habf: save:"-wrapped
	}
	if err := bw.Flush(); err != nil {
		return fail(fmt.Errorf("habf: save: %w", err))
	}
	if err := f.Sync(); err != nil {
		return fail(fmt.Errorf("habf: save: %w", err))
	}
	// CreateTemp makes the file 0600; widen to what a plain os.Create
	// would have produced, so backup jobs and sidecars can read the
	// published snapshot.
	if err := f.Chmod(0o644); err != nil {
		return fail(fmt.Errorf("habf: save: %w", err))
	}
	closed = true
	if err := f.Close(); err != nil {
		return fail(fmt.Errorf("habf: save: %w", err))
	}
	if err := os.Rename(tmp, path); err != nil {
		return fail(fmt.Errorf("habf: save: %w", err))
	}
	// Persist the rename: without syncing the directory, the new name can
	// be lost on power failure even though the data blocks are safe. A
	// failure here is a broken durability promise, not a quiet downgrade.
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("habf: save: sync dir: %w", err)
	}
	dirErr := d.Sync()
	d.Close()
	if dirErr != nil {
		return fmt.Errorf("habf: save: sync dir: %w", dirErr)
	}
	return nil
}

// Load restores a Sharded from a snapshot produced by Save. The load is
// zero-copy: after validating checksums, each shard's filter serves
// queries directly out of data, so a multi-gigabyte filter is
// query-ready as soon as the frames are verified. The caller must keep
// data alive and unmodified for the lifetime of the returned filter; a
// post-load Add copies the affected shard's arrays before mutating them
// (copy-on-first-write), never writing data itself.
//
// A restored filter routes, queries and absorbs Adds exactly like the
// original, but shards restored with a filter do not auto-rebuild on
// drift: the key list behind the snapshot is not in memory, so a drift
// rebuild would forget it. Rotate a long-lived restored filter by
// rebuilding from the source-of-truth key set once Stats().Added grows.
func Load(data []byte) (*Sharded, error) {
	snap, err := snapshot.Unmarshal(data)
	if err != nil {
		return nil, fmt.Errorf("habf: load: %w", err)
	}
	set, err := shard.Restore(snap)
	if err != nil {
		return nil, fmt.Errorf("habf: load: %w", err)
	}
	return &Sharded{set: set}, nil
}

// LoadFile reads path into memory and restores it with Load. The file's
// contents back the returned filter directly (zero-copy).
func LoadFile(path string) (*Sharded, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("habf: load: %w", err)
	}
	return Load(data)
}
