package server

import (
	"sync"
	"sync/atomic"
	"time"
)

// Batcher is the query capability the coalescer dispatches to — in
// production a *habf.Sharded, whose ContainsBatch takes each shard's
// lock once per chunk instead of once per key.
type Batcher interface {
	Contains(key []byte) bool
	ContainsBatch(keys [][]byte) []bool
}

// BatcherInto is the allocation-free batch capability a Batcher may
// additionally implement (as *habf.Sharded does): results land in a
// caller-owned slice instead of a fresh one per batch. The coalescer
// type-asserts for it once at construction and, when present, reuses a
// per-dispatcher result buffer so steady-state dispatch allocates
// nothing.
type BatcherInto interface {
	ContainsBatchInto(dst []bool, keys [][]byte)
}

// CoalesceConfig tunes the micro-batching layer.
type CoalesceConfig struct {
	// MaxBatch is the largest micro-batch dispatched at once. Default 256.
	MaxBatch int
	// MaxWait bounds how long a dispatcher lingers for stragglers after
	// a batch has started forming but is still below MinGather. The
	// zero default disables lingering: a dispatcher dispatches whatever
	// a non-blocking drain finds already queued. Under concurrent load
	// the drain alone forms healthy batches (requests accumulate while
	// the previous batch executes), and measurements show lingering
	// costs more than it gathers when each core is already saturated;
	// reserve a small positive MaxWait (≤100µs) for many-core hosts
	// with sustained traffic, where bigger batches buy back lock
	// rounds.
	MaxWait time.Duration
	// MinGather is the batch size at which a dispatcher stops lingering
	// and fires immediately; once the drain alone yields this many keys
	// the amortization win is already realized. Default 8.
	MinGather int
	// Dispatchers is the number of batch-dispatch goroutines. More than
	// one lets independent micro-batches execute in parallel on
	// multi-core hosts. Default 2.
	Dispatchers int
	// Disabled bypasses coalescing entirely: Contains degenerates to a
	// direct per-key query. The serving daemon exposes this as a flag so
	// the coalesced and uncoalesced request paths can be compared on
	// identical traffic.
	Disabled bool
}

func (c *CoalesceConfig) withDefaults() CoalesceConfig {
	out := *c
	if out.MaxBatch <= 0 {
		out.MaxBatch = 256
	}
	if out.MaxWait < 0 {
		out.MaxWait = 0
	}
	if out.MinGather <= 0 {
		out.MinGather = 8
	}
	if out.MinGather > out.MaxBatch {
		out.MinGather = out.MaxBatch
	}
	if out.Dispatchers <= 0 {
		out.Dispatchers = 2
	}
	return out
}

// coalReq is one in-flight single-key query. The result channel is
// buffered so a dispatcher never blocks delivering; requests are pooled
// and the channel reused across queries.
type coalReq struct {
	key []byte
	res chan bool
}

var reqPool = sync.Pool{New: func() any { return &coalReq{res: make(chan bool, 1)} }}

// CoalesceStats is a point-in-time summary of coalescer activity.
type CoalesceStats struct {
	// Keys is the number of single-key queries answered through batches.
	Keys uint64
	// Batches is the number of micro-batches dispatched.
	Batches uint64
	// Lingers counts batches that waited up to MaxWait for stragglers.
	Lingers uint64
	// Direct counts queries answered on the per-key path: coalescing
	// disabled, or requests arriving during/after Close.
	Direct uint64
}

// MeanBatch returns the average dispatched batch size.
func (s CoalesceStats) MeanBatch() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.Keys) / float64(s.Batches)
}

// Coalescer gathers concurrent single-key Contains calls into
// micro-batches and dispatches them through Batcher.ContainsBatch, so
// independent network callers share the per-chunk lock round and scratch
// reuse that in-process batch callers already enjoy.
//
// The gather policy is adaptive. A dispatcher first drains whatever is
// already queued, without blocking; under concurrent load this alone
// forms healthy batches, because requests accumulate while the previous
// batch executes. With a positive MaxWait, a dispatcher whose drain
// comes up short (fewer than MinGather keys) additionally lingers up to
// MaxWait for stragglers — but a linger that finds no company switches
// lingering off until some batch gathers more than one request again,
// so sporadic traffic on an idle server pays the wait at most once per
// quiet spell.
type Coalescer struct {
	b   Batcher
	bi  BatcherInto // b's zero-alloc batch path, nil if unimplemented
	cfg CoalesceConfig

	reqs    chan *coalReq
	closed  atomic.Bool
	sending sync.WaitGroup // senders in the closed-check → send window
	workers sync.WaitGroup

	keys    atomic.Uint64
	batches atomic.Uint64
	lingers atomic.Uint64
	direct  atomic.Uint64

	// onBatch, when set, observes each dispatched batch size (metrics).
	onBatch func(n int)
}

// NewCoalescer starts cfg.Dispatchers dispatch goroutines over b.
// Callers must Close the coalescer to release them.
func NewCoalescer(b Batcher, cfg CoalesceConfig) *Coalescer {
	cfg = cfg.withDefaults()
	bi, _ := b.(BatcherInto)
	c := &Coalescer{
		b:   b,
		bi:  bi,
		cfg: cfg,
		// Channel capacity covers several full batches so senders do not
		// block while a dispatch is executing.
		reqs: make(chan *coalReq, 4*cfg.MaxBatch*cfg.Dispatchers),
	}
	if !cfg.Disabled {
		c.workers.Add(cfg.Dispatchers)
		for i := 0; i < cfg.Dispatchers; i++ {
			go c.dispatch()
		}
	}
	return c
}

// Contains answers a single-key membership query, transparently batched
// with whatever other queries are in flight. Safe for any number of
// concurrent callers. After Close (or with coalescing disabled) it falls
// back to a direct per-key query, so late requests still get answers.
func (c *Coalescer) Contains(key []byte) bool {
	if c.cfg.Disabled || c.closed.Load() {
		c.direct.Add(1)
		return c.b.Contains(key)
	}
	r := reqPool.Get().(*coalReq)
	r.key = key
	// The sending WaitGroup pins the closed → drain ordering: Close sets
	// closed, waits out every sender that saw it unset, and only then
	// closes the channel, so no send can hit a closed channel.
	c.sending.Add(1)
	if c.closed.Load() {
		c.sending.Done()
		r.key = nil
		reqPool.Put(r)
		c.direct.Add(1)
		return c.b.Contains(key)
	}
	c.reqs <- r
	c.sending.Done()
	ok := <-r.res
	r.key = nil
	reqPool.Put(r)
	return ok
}

// Stats returns cumulative coalescing counters.
func (c *Coalescer) Stats() CoalesceStats {
	return CoalesceStats{
		Keys:    c.keys.Load(),
		Batches: c.batches.Load(),
		Lingers: c.lingers.Load(),
		Direct:  c.direct.Load(),
	}
}

// Close drains in-flight batches and stops the dispatchers. Queries
// racing with Close are still answered (coalesced if they made it into
// the queue, directly otherwise). Close is idempotent.
func (c *Coalescer) Close() {
	if c.closed.Swap(true) {
		return
	}
	c.sending.Wait()
	close(c.reqs)
	c.workers.Wait()
}

// dispatch is the batch-forming loop: block for the first request, drain
// stragglers, optionally linger, then answer the whole batch through one
// ContainsBatch call.
func (c *Coalescer) dispatch() {
	defer c.workers.Done()
	var (
		keys  = make([][]byte, 0, c.cfg.MaxBatch)
		batch = make([]*coalReq, 0, c.cfg.MaxBatch)
		// resbuf is this dispatcher's result buffer for the BatcherInto
		// path; batches never exceed MaxBatch, so it never regrows.
		resbuf = make([]bool, c.cfg.MaxBatch)
		timer  = time.NewTimer(time.Hour)
		// lonely is the linger-off switch: set when a linger gained no
		// company, cleared whenever a batch gathers more than one
		// request. Starting optimistic (false) lets the very first
		// concurrent burst coalesce.
		lonely = false
	)
	defer timer.Stop()
	if !timer.Stop() {
		<-timer.C
	}
	for {
		r, ok := <-c.reqs
		if !ok {
			return
		}
		keys = append(keys[:0], r.key)
		batch = append(batch[:0], r)

		// Phase 1: drain what is already queued, without blocking.
	drain:
		for len(batch) < c.cfg.MaxBatch {
			select {
			case r, ok = <-c.reqs:
				if !ok {
					break drain
				}
				keys = append(keys, r.key)
				batch = append(batch, r)
			default:
				break drain
			}
		}

		// Phase 2: linger briefly for stragglers when the drain came up
		// short, unless the last linger proved traffic is sporadic.
		if preLinger := len(batch); ok && preLinger < c.cfg.MinGather && c.cfg.MaxWait > 0 && !lonely {
			c.lingers.Add(1)
			timer.Reset(c.cfg.MaxWait)
		linger:
			for len(batch) < c.cfg.MinGather {
				select {
				case r, ok = <-c.reqs:
					if !ok {
						break linger
					}
					keys = append(keys, r.key)
					batch = append(batch, r)
				case <-timer.C:
					break linger
				}
			}
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			lonely = len(batch) == preLinger
		} else if len(batch) > 1 || c.batches.Load()%64 == 63 {
			// A multi-request batch proves concurrency; and every 64th
			// batch re-probes lingering even without one, so a quiet
			// spell can't disable coalescing permanently.
			lonely = false
		}

		var results []bool
		if c.bi != nil {
			if cap(resbuf) < len(keys) {
				resbuf = make([]bool, len(keys))
			}
			results = resbuf[:len(keys)]
			c.bi.ContainsBatchInto(results, keys)
		} else {
			results = c.b.ContainsBatch(keys)
		}
		for i, r := range batch {
			r.res <- results[i]
			// Release the key and request references now: the scratch
			// slices are reused via [:0], so slots left behind by a large
			// batch would otherwise pin every past caller's key bytes
			// until a later batch happens to grow over them.
			keys[i] = nil
			batch[i] = nil
		}
		c.keys.Add(uint64(len(batch)))
		c.batches.Add(1)
		if c.onBatch != nil {
			c.onBatch(len(batch))
		}
	}
}
